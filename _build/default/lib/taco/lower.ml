open Ast

(* For each index variable, find a bound: the first RHS access that uses it
   gives [Dim_of (tensor, axis)]; an LHS-only index is bounded by the
   corresponding output axis. *)
let index_bounds (p : program) : (string * Ir.bound) list =
  let bounds = ref [] in
  let add idx b = if not (List.mem_assoc idx !bounds) then bounds := (idx, b) :: !bounds in
  let rec scan = function
    | Access (t, idxs) -> List.iteri (fun k i -> add i (Ir.Dim_of (t, k))) idxs
    | Const _ -> ()
    | Neg e -> scan e
    | Bin (_, a, b) ->
        scan a;
        scan b
  in
  scan p.rhs;
  let _, lhs_idxs = p.lhs in
  List.iteri (fun k i -> add i (Ir.Out_dim k)) lhs_idxs;
  List.rev !bounds

let lower (p : program) : (Ir.kernel, string) result =
  let bounds = index_bounds p in
  let bound_of idx =
    match List.assoc_opt idx bounds with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "index %s has no determinable extent" idx)
  in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "t%d" !counter
  in
  let ( let* ) = Result.bind in
  let rec nest_loops reds inner =
    match reds with
    | [] -> Ok inner
    | r :: rest ->
        let* b = bound_of r in
        let* body = nest_loops rest inner in
        Ok [ Ir.For (r, b, body) ]
  in
  (* [go node] returns the statements that must run before [node]'s value
     can be read, together with the expression for that value. *)
  let rec go (node : Reduction.t) : (Ir.stmt list * Ir.exp, string) result =
    match node.reds with
    | [] -> go_inner node
    | reds ->
        let* inner_stmts, inner_exp = go_inner node in
        let t = fresh () in
        let* loops = nest_loops reds (inner_stmts @ [ Ir.Accum_temp (t, inner_exp) ]) in
        Ok ([ Ir.Set_temp (t, Ir.Const Stagg_util.Rat.zero) ] @ loops, Ir.Temp t)
  and go_inner (node : Reduction.t) =
    match node.node with
    | Reduction.Access (t, idxs) -> Ok ([], Ir.Load (t, idxs))
    | Reduction.Const c -> Ok ([], Ir.Const c)
    | Reduction.Neg e ->
        let* s, x = go e in
        Ok (s, Ir.Neg x)
    | Reduction.Bin (op, a, b) ->
        let* sa, xa = go a in
        let* sb, xb = go b in
        Ok (sa @ sb, Ir.Bin (op, xa, xb))
  in
  let root = Reduction.annotate p in
  let* stmts, exp = go root in
  let _, lhs_idxs = p.lhs in
  let inner = stmts @ [ Ir.Store (lhs_idxs, exp) ] in
  let rec out_loops idxs k =
    match idxs with
    | [] -> Ok inner
    | i :: rest ->
        let* body = out_loops rest (k + 1) in
        (* prefer an RHS-derived bound so the kernel does not depend on a
           pre-sized output; fall back to the output axis *)
        let b = match List.assoc_opt i bounds with Some b -> b | None -> Ir.Out_dim k in
        Ok [ Ir.For (i, b, body) ]
  in
  let* body = out_loops lhs_idxs 0 in
  Ok { Ir.out_indices = lhs_idxs; body }

let lower_exn p =
  match lower p with Ok k -> k | Error msg -> failwith ("Lower: " ^ msg)
