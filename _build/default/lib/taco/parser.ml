open Ast

exception Parse_error of string

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else
    raise
      (Parse_error
         (Printf.sprintf "expected %s, found %s" (Lexer.token_to_string tok)
            (Lexer.token_to_string (peek st))))

let is_sum_name name =
  match String.lowercase_ascii name with "sum" | "summation" -> true | _ -> false

(* factor := '-' factor | '(' expr ')' | NUMBER | IDENT [ '(' args ')' ] *)
let rec parse_factor st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      Neg (parse_factor st)
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr_prec st in
      expect st Lexer.RPAREN;
      e
  | Lexer.NUMBER r ->
      advance st;
      Const r
  | Lexer.IDENT name ->
      advance st;
      if peek st = Lexer.LPAREN then begin
        advance st;
        let args = parse_args st in
        expect st Lexer.RPAREN;
        interpret_call name args
      end
      else Access (name, [])
  | t -> raise (Parse_error (Printf.sprintf "unexpected token %s" (Lexer.token_to_string t)))

and parse_args st =
  let first = parse_expr_prec st in
  let rec rest acc =
    if peek st = Lexer.COMMA then begin
      advance st;
      rest (parse_expr_prec st :: acc)
    end
    else List.rev acc
  in
  rest [ first ]

(* A call is either a tensor access (all arguments are bare identifiers) or
   an explicit summation wrapper [sum(i, j, e)], which we erase. *)
and interpret_call name args =
  let as_index = function Access (x, []) -> Some x | _ -> None in
  let all_indices = List.filter_map as_index args in
  if List.length all_indices = List.length args then
    if is_sum_name name && args <> [] then
      (* sum over bare indices with no body, e.g. sum(i): treat the last
         identifier as the (degenerate) body *)
      match List.rev all_indices with
      | last :: _ -> Access (last, [])
      | [] -> assert false
    else Access (name, all_indices)
  else if is_sum_name name then
    match List.rev args with
    | body :: rest when List.for_all (fun a -> as_index a <> None) rest -> body
    | _ -> raise (Parse_error "malformed sum(...) expression")
  else raise (Parse_error (Printf.sprintf "tensor %s indexed with a non-identifier" name))

(* term := factor (('*'|'/') factor)* *)
and parse_term st =
  let lhs = parse_factor st in
  let rec go lhs =
    match peek st with
    | Lexer.STAR ->
        advance st;
        go (Bin (Mul, lhs, parse_factor st))
    | Lexer.SLASH ->
        advance st;
        go (Bin (Div, lhs, parse_factor st))
    | _ -> lhs
  in
  go lhs

(* expr := term (('+'|'-') term)* *)
and parse_expr_prec st =
  let lhs = parse_term st in
  let rec go lhs =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        go (Bin (Add, lhs, parse_term st))
    | Lexer.MINUS ->
        advance st;
        go (Bin (Sub, lhs, parse_term st))
    | _ -> lhs
  in
  go lhs

let parse_lhs st =
  match peek st with
  | Lexer.IDENT name ->
      advance st;
      if peek st = Lexer.LPAREN then begin
        advance st;
        let rec indices acc =
          match peek st with
          | Lexer.IDENT i ->
              advance st;
              if peek st = Lexer.COMMA then begin
                advance st;
                indices (i :: acc)
              end
              else List.rev (i :: acc)
          | t ->
              raise
                (Parse_error
                   (Printf.sprintf "expected index variable, found %s" (Lexer.token_to_string t)))
        in
        let idxs = indices [] in
        expect st Lexer.RPAREN;
        (name, idxs)
      end
      else (name, [])
  | t ->
      raise (Parse_error (Printf.sprintf "expected tensor name, found %s" (Lexer.token_to_string t)))

let run f s =
  match
    let st = { toks = Lexer.tokenize s } in
    let r = f st in
    expect st Lexer.EOF;
    r
  with
  | r -> Ok r
  | exception Parse_error msg -> Error msg
  | exception Lexer.Lex_error msg -> Error msg

let parse_program s =
  run
    (fun st ->
      let lhs = parse_lhs st in
      expect st Lexer.ASSIGN;
      let rhs = parse_expr_prec st in
      { lhs; rhs })
    s

let parse_expr s = run parse_expr_prec s

let parse_program_exn s =
  match parse_program s with Ok p -> p | Error msg -> failwith ("Taco parse error: " ^ msg)
