(** Reduction-placement analysis shared by the interpreter and the compiler.

    Annotates a TACO RHS with, at each node, the list of reduction indices
    whose implicit summation is inserted there: the deepest node whose
    subtree contains every occurrence of the index (see DESIGN.md §4). *)

type t = { node : node; occ : (string * int) list; mutable reds : string list }

and node =
  | Access of string * string list
  | Const of Stagg_util.Rat.t
  | Neg of t
  | Bin of Ast.op * t * t

(** [annotate p] builds the annotated RHS of [p] with all reduction
    summations placed. *)
val annotate : Ast.program -> t
