open Ast
open Stagg_util

(* Precedence levels: additive = 1, multiplicative = 2, atoms = 3. *)
let prec_of = function Add | Sub -> 1 | Mul | Div -> 2

let access_to_string name idxs =
  match idxs with [] -> name | _ -> Printf.sprintf "%s(%s)" name (String.concat ", " idxs)

let rec go buf parent_prec right_side e =
  match e with
  | Access (t, idxs) -> Buffer.add_string buf (access_to_string t idxs)
  | Const c ->
      if Rat.sign c < 0 then begin
        (* negative literal: parenthesize so "a - -1" never prints *)
        Buffer.add_char buf '(';
        Buffer.add_string buf (Rat.to_string c);
        Buffer.add_char buf ')'
      end
      else Buffer.add_string buf (Rat.to_string c)
  | Neg inner ->
      Buffer.add_string buf "-";
      go buf 3 false inner
  | Bin (op, l, r) ->
      let p = prec_of op in
      (* Operators parse left-associatively, so a right operand of equal
         precedence must be parenthesized to round-trip the AST exactly. *)
      let needs = p < parent_prec || (p = parent_prec && right_side) in
      if needs then Buffer.add_char buf '(';
      go buf p false l;
      Buffer.add_string buf (Printf.sprintf " %s " (op_to_string op));
      go buf p true r;
      if needs then Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 32 in
  go buf 0 false e;
  Buffer.contents buf

let program_to_string (p : program) =
  let name, idxs = p.lhs in
  Printf.sprintf "%s = %s" (access_to_string name idxs) (expr_to_string p.rhs)

let pp_expr fmt e = Format.pp_print_string fmt (expr_to_string e)
let pp_program fmt p = Format.pp_print_string fmt (program_to_string p)
