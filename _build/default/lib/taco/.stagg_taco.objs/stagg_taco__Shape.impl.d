lib/taco/shape.ml: Array Ast List Printf Result
