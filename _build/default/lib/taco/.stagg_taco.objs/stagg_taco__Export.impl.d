lib/taco/export.ml: Ast Bigint Buffer List Pretty Printf Rat Result Stagg_util String
