lib/taco/lower.mli: Ast Ir
