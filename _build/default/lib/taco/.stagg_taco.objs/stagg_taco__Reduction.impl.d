lib/taco/reduction.ml: Ast List Stagg_util
