lib/taco/interp.ml: Array Ast List Printf Reduction Shape Stagg_util Tensor
