lib/taco/pretty.ml: Ast Buffer Format Printf Rat Stagg_util String
