lib/taco/shape.mli: Ast
