lib/taco/reduction.mli: Ast Stagg_util
