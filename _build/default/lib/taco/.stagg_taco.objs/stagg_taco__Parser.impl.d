lib/taco/parser.ml: Ast Lexer List Printf String
