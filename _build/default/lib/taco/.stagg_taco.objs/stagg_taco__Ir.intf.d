lib/taco/ir.mli: Ast Format Stagg_util Tensor
