lib/taco/ir.ml: Array Ast Buffer Format Hashtbl List Printf Rat Stagg_util String Tensor
