lib/taco/codegen_c.mli: Ast Ir
