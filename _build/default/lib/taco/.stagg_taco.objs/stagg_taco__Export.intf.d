lib/taco/export.mli: Ast
