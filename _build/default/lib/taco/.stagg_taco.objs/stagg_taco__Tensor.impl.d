lib/taco/tensor.ml: Array Format List Printf String
