lib/taco/lower.ml: Ast Ir List Printf Reduction Result Stagg_util
