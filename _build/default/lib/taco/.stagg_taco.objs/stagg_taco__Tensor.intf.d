lib/taco/tensor.mli: Format
