lib/taco/parser.mli: Ast
