lib/taco/interp.mli: Ast Stagg_util Tensor
