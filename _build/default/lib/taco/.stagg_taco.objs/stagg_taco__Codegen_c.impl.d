lib/taco/codegen_c.ml: Ast Buffer Ir List Lower Printf Rat Result Stagg_util String
