lib/taco/pretty.mli: Ast Format
