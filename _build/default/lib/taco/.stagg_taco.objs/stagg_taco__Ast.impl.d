lib/taco/ast.ml: Hashtbl List Rat Stagg_util String
