lib/taco/lexer.mli: Stagg_util
