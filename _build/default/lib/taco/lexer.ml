open Stagg_util

type token =
  | IDENT of string
  | NUMBER of Rat.t
  | LPAREN
  | RPAREN
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | EOF

exception Lex_error of string

let token_to_string = function
  | IDENT s -> Printf.sprintf "IDENT %s" s
  | NUMBER r -> Printf.sprintf "NUMBER %s" (Rat.to_string r)
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | EOF -> "EOF"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (s : string) : token list =
  let n = String.length s in
  let pos = ref 0 in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  while !pos < n do
    let c = s.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char s.[!pos] do
        incr pos
      done;
      emit (IDENT (String.sub s start (!pos - start)))
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit s.[!pos] do
        incr pos
      done;
      if !pos + 1 < n && s.[!pos] = '.' && is_digit s.[!pos + 1] then begin
        (* decimal literal: read fractional digits, build an exact rational *)
        incr pos;
        let frac_start = !pos in
        while !pos < n && is_digit s.[!pos] do
          incr pos
        done;
        let int_part = String.sub s start (frac_start - 1 - start) in
        let frac_part = String.sub s frac_start (!pos - frac_start) in
        let num = Bigint.of_string (int_part ^ frac_part) in
        let den = Bigint.pow (Bigint.of_int 10) (String.length frac_part) in
        emit (NUMBER (Rat.make num den))
      end
      else emit (NUMBER (Rat.of_bigint (Bigint.of_string (String.sub s start (!pos - start)))))
    end
    else begin
      incr pos;
      match c with
      | '(' -> emit LPAREN
      | ')' -> emit RPAREN
      | ',' -> emit COMMA
      | '=' -> emit ASSIGN
      | ':' ->
          if !pos < n && s.[!pos] = '=' then begin
            incr pos;
            emit ASSIGN
          end
          else raise (Lex_error "expected '=' after ':'")
      | '+' -> emit PLUS
      | '-' -> emit MINUS
      | '*' -> emit STAR
      | '/' -> emit SLASH
      | c -> raise (Lex_error (Printf.sprintf "illegal character %C" c))
    end
  done;
  emit EOF;
  List.rev !toks
