(** Multi-backend exporters for lifted programs.

    Once a kernel is lifted to TACO index notation, the point of the
    exercise (paper §1) is access to high-performance tensor DSLs. This
    module renders a lifted program for three of the backends the
    Tenspiler line of work targets:

    - {!to_numpy}: a NumPy function over [ndarray]s ([np.einsum] for pure
      contractions, broadcast-aligned arithmetic otherwise);
    - {!to_pytorch}: the same over [torch] tensors;
    - {!to_taco_cpp}: the C++ TACO API (tensor declarations, index
      variables and the assignment the TACO compiler consumes).

    Exporters fail (with a message) on programs outside their fragment —
    e.g. more than 26 index variables, or shapes NumPy cannot broadcast. *)

val to_numpy : ?name:string -> Ast.program -> (string, string) result
val to_pytorch : ?name:string -> Ast.program -> (string, string) result
val to_taco_cpp : ?name:string -> Ast.program -> (string, string) result
