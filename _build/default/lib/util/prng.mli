(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction (the mock LLM's noise,
    I/O example generation) draws from an explicitly-seeded [Prng.t], so
    whole-suite experiment runs are bit-for-bit reproducible. *)

type t

val create : seed:int -> t

(** [split t] derives an independent generator; [t] advances. *)
val split : t -> t

(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)
val int_range : t -> int -> int -> int

val bool : t -> bool

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [chance t p] is true with probability [p]. *)
val chance : t -> float -> bool

(** [choose t xs] picks a uniform element. @raise Invalid_argument on []. *)
val choose : t -> 'a list -> 'a

(** [shuffle t xs] is a uniform permutation of [xs]. *)
val shuffle : t -> 'a list -> 'a list
