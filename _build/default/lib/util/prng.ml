(* splitmix64 (Steele, Lea & Flood 2014), on boxed int64 state. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create ~seed = { state = mix (Int64.of_int seed) }

let split t = { state = mix (next t) }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let int_range t lo hi =
  if hi < lo then invalid_arg "Prng.int_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  r /. 9007199254740992. (* 2^53 *)

let chance t p = float t < p

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
