(** The value-domain signature shared by every interpreter in the project.

    Both the mini-C interpreter ({!Stagg_minic.Interp}) and the TACO
    interpreters ({!Stagg_taco.Interp}, {!Stagg_taco.Ir}) are functors over
    [Value.S]. Instantiating them at {!Rat} gives concrete execution (used
    for I/O example generation and template validation); instantiating them
    at symbolic rational functions ({!Stagg_verify.Ratfunc}) gives the
    bounded model checker of the paper's §7.

    Control flow must stay concrete even under symbolic execution: loop
    bounds and comparisons are only ever computed from size parameters and
    loop counters, which are always bound to constants. [to_int] and
    [compare_concrete] expose that partial concreteness. *)

module type S = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val of_rat : Rat.t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t

  (** Exact division. @raise Division_by_zero when the divisor is the
      constant zero (symbolic domains treat a non-constant divisor as a
      formally-nonzero rational function). *)
  val div : t -> t -> t

  val neg : t -> t

  (** Semantic equality (used to compare program outputs). *)
  val equal : t -> t -> bool

  (** [to_int v] is [Some n] when [v] is the concrete integer [n]. *)
  val to_int : t -> int option

  (** [compare_concrete a b] is [Some c] when both values are concrete
      rationals; [None] when either is symbolic. *)
  val compare_concrete : t -> t -> int option

  val pp : Format.formatter -> t -> unit
end

(** The concrete instance: exact rationals. *)
module Rat_value : S with type t = Rat.t = struct
  type t = Rat.t

  let zero = Rat.zero
  let one = Rat.one
  let of_int = Rat.of_int
  let of_rat r = r
  let add = Rat.add
  let sub = Rat.sub
  let mul = Rat.mul
  let div = Rat.div
  let neg = Rat.neg
  let equal = Rat.equal
  let to_int = Rat.to_int
  let compare_concrete a b = Some (Rat.compare a b)
  let pp = Rat.pp
end
