type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  if Bigint.is_zero den then raise Division_by_zero;
  if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    { num = Bigint.div num g; den = Bigint.div den g }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let minus_one = { num = Bigint.minus_one; den = Bigint.one }
let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
      make
        (Bigint.of_string (String.sub s 0 i))
        (Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)))

let to_string t =
  if Bigint.equal t.den Bigint.one then Bigint.to_string t.num
  else Bigint.to_string t.num ^ "/" ^ Bigint.to_string t.den

let is_integer t = Bigint.equal t.den Bigint.one

let to_int t = if is_integer t then Bigint.to_int t.num else None

let to_float t =
  (* good enough for display / heuristics; not used in exact paths *)
  match (Bigint.to_int t.num, Bigint.to_int t.den) with
  | Some n, Some d -> float_of_int n /. float_of_int d
  | _ -> float_of_string (Bigint.to_string t.num) /. float_of_string (Bigint.to_string t.den)

let neg t = { t with num = Bigint.neg t.num }
let abs t = { t with num = Bigint.abs t.num }

let add a b =
  make
    (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den))
    (Bigint.mul a.den b.den)

let sub a b = add a (neg b)
let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)
let inv t = make t.den t.num
let div a b = mul a (inv b)
let sign t = Bigint.sign t.num
let is_zero t = Bigint.is_zero t.num
let compare a b = Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)
let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let hash t = Hashtbl.hash (Bigint.hash t.num, Bigint.hash t.den)
let pp fmt t = Format.pp_print_string fmt (to_string t)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
end
