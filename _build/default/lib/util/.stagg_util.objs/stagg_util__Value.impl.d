lib/util/value.ml: Format Rat
