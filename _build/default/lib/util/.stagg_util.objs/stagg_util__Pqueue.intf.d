lib/util/pqueue.mli:
