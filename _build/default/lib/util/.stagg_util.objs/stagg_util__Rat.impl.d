lib/util/rat.ml: Bigint Format Hashtbl String
