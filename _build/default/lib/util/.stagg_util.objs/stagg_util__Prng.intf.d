lib/util/prng.mli:
