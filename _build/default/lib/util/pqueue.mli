(** Imperative min-priority queue (binary heap) keyed by [float].

    Used as the frontier of both A* searches (paper Algorithms 1 and 2).
    Ties are broken by insertion order (FIFO), which makes the searches
    deterministic and keeps them faithful to the paper's "queue" phrasing. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

(** [push q priority v] inserts [v] with the given priority. *)
val push : 'a t -> float -> 'a -> unit

(** [pop q] removes and returns a minimum-priority element, with its
    priority. [None] on an empty queue. *)
val pop : 'a t -> (float * 'a) option

(** [peek q] returns a minimum element without removing it. *)
val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
