(* Tests for stagg_minic: parser, interpreter, affine polynomials, array
   recovery, delinearization and dimension inference. *)

open Stagg_util
open Stagg_minic
module I = Interp.Make (Value.Rat_value)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse = Parser.parse_function_exn
let rat = Rat.of_int
let rats = Array.map rat
let strs a = Array.to_list (Array.map Rat.to_string a)

(* the paper's Fig. 2 program *)
let fig2 =
  {|
void function(int N, int* Mat1, int* Mat2, int* Result){
 int* p_m1; int* p_m2; int* p_t;
 int i, f;
 p_m1 = Mat1; p_t = Result;
 for (f = 0; f < N; f++) {
   *p_t = 0;
   p_m2 = &Mat2[0];
   for (i = 0; i < N; i++)
     *p_t += *p_m1++ * *p_m2++;
   p_t++;
 }
}
|}

(* ---- parsing ---- *)

let test_parse_fig2 () =
  let f = parse fig2 in
  check_string "name" "function" f.Ast.fname;
  check_int "params" 4 (List.length f.params);
  check_bool "N is scalar" true ((List.hd f.params).ptyp = Ast.Tint);
  check_bool "Mat1 is pointer" true ((List.nth f.params 1).ptyp = Ast.Tptr)

let test_parse_forms () =
  (* declarations with multiple declarators, casts, float literals,
     comments, const, compound assignment *)
  let src =
    {|
/* block comment */
void f(const float* A, int N, float* R) {
  int i = 0, j; // line comment
  float x = 0.25f;
  for (i = 0; i < N; i++) {
    R[i] = (float) A[i] * x;
    R[i] += 1;
    R[i] -= 0;
    R[i] *= 2;
    R[i] /= 1;
  }
  if (N > 0) { R[0] = R[0]; } else { }
  return;
}
|}
  in
  let f = parse src in
  check_int "3 params" 3 (List.length f.params)

let test_parse_errors () =
  check_bool "missing brace" true (Result.is_error (Parser.parse_function "void f() { int i;"));
  check_bool "garbage" true (Result.is_error (Parser.parse_function "not a function"))

(* ---- interpreter ---- *)

let run_fn src args =
  let f = parse src in
  match I.run f ~args with Ok () -> () | Error msg -> Alcotest.fail msg

let test_interp_fig2 () =
  let n = 3 in
  let m1 = rats [| 1; 2; 3; 4; 5; 6; 7; 8; 9 |] in
  let m2 = rats [| 1; 2; 3 |] in
  let res = Array.make n Rat.zero in
  run_fn fig2 [ I.Scalar (rat n); I.Array m1; I.Array m2; I.Array res ];
  Alcotest.(check (list string)) "row dot products" [ "14"; "32"; "50" ] (strs res)

let test_interp_rational_division () =
  (* the verifier's semantics: / is exact rational division, as in the
     paper's rational extension of CBMC *)
  let src = "void f(int N, int* A, int* R) { int i; for (i=0;i<N;i++) R[i] = A[i] / 4; }" in
  let a = rats [| 1; 2; 3 |] in
  let r = Array.make 3 Rat.zero in
  run_fn src [ I.Scalar (rat 3); I.Array a; I.Array r ];
  Alcotest.(check (list string)) "exact division" [ "1/4"; "1/2"; "3/4" ] (strs r)

let test_interp_out_of_bounds () =
  let src = "void f(int N, int* A) { A[N] = 1; }" in
  let f = parse src in
  match I.run f ~args:[ I.Scalar (rat 2); I.Array (Array.make 2 Rat.zero) ] with
  | Error msg -> check_bool "oob detected" true (String.length msg > 0)
  | Ok () -> Alcotest.fail "expected out-of-bounds error"

let test_interp_ternary_and_logic () =
  let src =
    {|
void f(int N, int* A, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = (A[i] > 2 && A[i] < 5) ? A[i] : 0 - A[i];
  }
}
|}
  in
  let a = rats [| 1; 3; 7 |] in
  let r = Array.make 3 Rat.zero in
  run_fn src [ I.Scalar (rat 3); I.Array a; I.Array r ];
  Alcotest.(check (list string)) "ternary" [ "-1"; "3"; "-7" ] (strs r)

let test_interp_post_incr_expr () =
  let src = "void f(int* A, int* R) { int* p; p = A; *R = *p++ + *p; }" in
  let a = rats [| 10; 20 |] in
  let r = Array.make 1 Rat.zero in
  run_fn src [ I.Array a; I.Array r ];
  Alcotest.(check (list string)) "post-increment yields old value" [ "30" ] (strs r)

let test_interp_arity_mismatch () =
  let f = parse "void f(int N) { }" in
  check_bool "arity checked" true (Result.is_error (I.run f ~args:[]))

(* ---- affine polynomials ---- *)

let test_affine_basic () =
  let open Affine in
  let p = add (mul (var "f") (var "N")) (var "i") in
  check_string "print" "N*f + i" (to_string p);
  check_bool "mentions f" true (mentions p "f");
  check_bool "not mentions j" false (mentions p "j");
  Alcotest.(check (list string)) "vars" [ "N"; "f"; "i" ] (vars p);
  check_bool "subst" true (equal (subst p "i" zero) (mul (var "f") (var "N")));
  check_bool "is_const" true (is_const (sub p p) = Some 0)

let qcheck_affine_ring =
  let arb =
    let open QCheck.Gen in
    let rec poly n =
      if n = 0 then oneof [ map Affine.const (int_range (-5) 5); map Affine.var (oneofl [ "x"; "y" ]) ]
      else
        oneof
          [
            map2 Affine.add (poly (n - 1)) (poly (n - 1));
            map2 Affine.mul (poly (n - 1)) (poly (n - 1));
            map Affine.neg (poly (n - 1));
          ]
    in
    QCheck.make (poly 3) ~print:Affine.to_string
  in
  QCheck.Test.make ~name:"affine polynomials form a commutative ring" ~count:200
    (QCheck.triple arb arb arb) (fun (a, b, c) ->
      Affine.equal (Affine.add a b) (Affine.add b a)
      && Affine.equal (Affine.mul a b) (Affine.mul b a)
      && Affine.equal (Affine.mul a (Affine.add b c)) (Affine.add (Affine.mul a b) (Affine.mul a c))
      && Affine.equal (Affine.sub a a) Affine.zero)

(* ---- array recovery and dimension inference ---- *)

let test_recover_fig2 () =
  let f = parse fig2 in
  let accs = Recover.analyze f in
  let find base kind =
    List.filter (fun (a : Recover.access) -> a.base = base && a.kind = kind) accs
  in
  (* the pointer walk over Mat1 is recovered as the linearized access
     Mat1[N*f + i] — the array-recovery analysis of the paper *)
  (match find "Mat1" Recover.Load with
  | [ a ] -> check_string "Mat1 delinearized" "N*f + i" (Affine.to_string (Option.get a.index))
  | _ -> Alcotest.fail "expected one Mat1 load");
  (* stores through p_t land in Result[f] *)
  let result_stores = find "Result" Recover.Store in
  check_bool "Result store recovered" true
    (List.exists
       (fun (a : Recover.access) ->
         match a.index with Some p -> Affine.equal p (Affine.var "f") | None -> false)
       result_stores)

let test_dims_fig2 () =
  let f = parse fig2 in
  check_string "output param" "Result" (Option.get (Dims.output_param f));
  check_int "LHS dim" 1 (Option.get (Dims.lhs_dim f));
  let dims = Dims.param_dims f in
  check_int "Mat1 rank 2 (delinearized)" 2 (Option.get (List.assoc "Mat1" dims));
  check_int "Mat2 rank 1" 1 (Option.get (List.assoc "Mat2" dims));
  check_int "N rank 0" 0 (Option.get (List.assoc "N" dims))

let test_dims_scalar_output () =
  let src =
    "void dot(int N, int* A, int* B, int* R) { int i; int s = 0; for (i=0;i<N;i++) s += A[i]*B[i]; *R = s; }"
  in
  let f = parse src in
  check_string "out" "R" (Option.get (Dims.output_param f));
  check_int "scalar output has dim 0" 0 (Option.get (Dims.lhs_dim f))

let test_dims_2d_linearized () =
  let src =
    {|
void g(int N, int M, int* A, int* R) {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < M; j++)
      R[i * M + j] = A[i * M + j] * 2;
}
|}
  in
  let f = parse src in
  check_int "2-D store delinearized" 2 (Option.get (Dims.lhs_dim f))

let test_dims_pointer_walk_output () =
  (* output written through *pr++ — the case that exercises store-target
     side-effect threading in the analysis *)
  let src =
    "void s(int N, int* A, int* R) { int i; int* pr = R; int* pa = A; for (i=0;i<N;i++) *pr++ = *pa++ * 3; }"
  in
  let f = parse src in
  check_string "out" "R" (Option.get (Dims.output_param f));
  check_int "walked output is 1-D" 1 (Option.get (Dims.lhs_dim f))

let test_recover_unknown_loop () =
  (* a while-style loop (no recognizable header) must not crash and must
     degrade to imprecision, not wrong answers *)
  let src = "void f(int N, int* A, int* R) { int i; for (i = N; i > 0; i--) R[i-1] = A[i-1]; }" in
  let f = parse src in
  (* downward loop: header not recognized; analysis yields no precise dims *)
  check_bool "no crash" true (Dims.lhs_dim f = None || Dims.lhs_dim f = Some 1)

let test_constants_and_ops () =
  let src =
    "void f(int N, int* A, int* R) { int i; for (i=0;i<N;i++) R[i] = A[i] * 5 + 2; }"
  in
  let f = parse src in
  Alcotest.(check (list string)) "constants in order" [ "5"; "2" ]
    (List.map Rat.to_string (Ast.constants f));
  check_int "two arithmetic ops" 2 (List.length (Ast.arith_ops_used f))

let test_constants_exclude_subscripts () =
  let src = "void f(int* A, int* R) { R[0] = A[1] + 3; }" in
  let f = parse src in
  Alcotest.(check (list string)) "subscript literals excluded" [ "3" ]
    (List.map Rat.to_string (Ast.constants f))

(* ---- signature specs ---- *)

let test_sigspec_parse () =
  match Sigspec.parse "N:size, M:size, A:arr[N,M], X:arr[M], R:out[N]" with
  | Error e -> Alcotest.fail e
  | Ok sg ->
      check_string "output" "R" sg.Signature.out;
      check_int "five args" 5 (List.length sg.args);
      Alcotest.(check (list string)) "order preserved" [ "N"; "M"; "A"; "X"; "R" ]
        (List.map fst sg.args);
      check_bool "A shaped" true (List.assoc "A" sg.args = Signature.Arr [ "N"; "M" ])

let test_sigspec_scalar_out () =
  match Sigspec.parse "N:size,A:arr[N],R:out" with
  | Error e -> Alcotest.fail e
  | Ok sg -> check_bool "bare out is a scalar cell" true (List.assoc "R" sg.args = Signature.Arr [])

let test_sigspec_errors () =
  check_bool "no out" true (Result.is_error (Sigspec.parse "N:size,A:arr[N]"));
  check_bool "two outs" true (Result.is_error (Sigspec.parse "A:out[N],B:out[N],N:size"));
  check_bool "undeclared dim" true (Result.is_error (Sigspec.parse "A:arr[N],R:out"));
  check_bool "bad kind" true (Result.is_error (Sigspec.parse "A:tensor[N],R:out"));
  check_bool "empty" true (Result.is_error (Sigspec.parse "   "))

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "stagg_minic"
    [
      ( "parser",
        [
          Alcotest.test_case "fig2" `Quick test_parse_fig2;
          Alcotest.test_case "syntactic forms" `Quick test_parse_forms;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "interp",
        [
          Alcotest.test_case "fig2 row dot products" `Quick test_interp_fig2;
          Alcotest.test_case "rational division" `Quick test_interp_rational_division;
          Alcotest.test_case "bounds checking" `Quick test_interp_out_of_bounds;
          Alcotest.test_case "ternary and logic" `Quick test_interp_ternary_and_logic;
          Alcotest.test_case "post-increment" `Quick test_interp_post_incr_expr;
          Alcotest.test_case "arity" `Quick test_interp_arity_mismatch;
        ] );
      ("affine", [ Alcotest.test_case "basic" `Quick test_affine_basic; qc qcheck_affine_ring ]);
      ( "sigspec",
        [
          Alcotest.test_case "parse" `Quick test_sigspec_parse;
          Alcotest.test_case "scalar out" `Quick test_sigspec_scalar_out;
          Alcotest.test_case "errors" `Quick test_sigspec_errors;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "array recovery on fig2" `Quick test_recover_fig2;
          Alcotest.test_case "dims on fig2" `Quick test_dims_fig2;
          Alcotest.test_case "scalar output" `Quick test_dims_scalar_output;
          Alcotest.test_case "2-D linearized store" `Quick test_dims_2d_linearized;
          Alcotest.test_case "pointer-walk output" `Quick test_dims_pointer_walk_output;
          Alcotest.test_case "unknown loop degrades gracefully" `Quick test_recover_unknown_loop;
          Alcotest.test_case "constants and operators" `Quick test_constants_and_ops;
          Alcotest.test_case "constants exclude subscripts" `Quick test_constants_exclude_subscripts;
        ] );
    ]
