(* Suite integrity tests: the 77 benchmarks parse, their signatures are
   coherent, and — the strong property — every stated ground truth
   validates on I/O examples and passes bounded verification against its
   own C program. *)

open Stagg_util
module Suite = Stagg_benchsuite.Suite
module Bench = Stagg_benchsuite.Bench
module Sig = Stagg_minic.Signature

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_self_check () =
  match Suite.self_check () with
  | [] -> ()
  | fails ->
      Alcotest.fail
        (String.concat "; " (List.map (fun (n, m) -> n ^ ": " ^ m) fails))

let test_counts () =
  check_int "77 total" 77 (List.length Suite.all);
  check_int "67 real-world" 67 (List.length Suite.real_world);
  check_int "10 artificial" 10 (List.length Suite.artificial);
  check_int "6 llama" 6 (List.length (Suite.by_category Bench.Llama));
  check_int "12 blas" 12 (List.length (Suite.by_category Bench.Blas))

let test_signatures_cover_params () =
  List.iter
    (fun (b : Bench.t) ->
      let f = Bench.func b in
      let param_names = List.map (fun p -> p.Stagg_minic.Ast.pname) f.params in
      let sig_names = List.map fst b.signature.args in
      check_bool (b.name ^ ": signature matches parameter list") true (param_names = sig_names);
      check_bool (b.name ^ ": output is a parameter") true (List.mem b.signature.out param_names))
    Suite.all

let test_ground_truths_hold () =
  (* each stated truth is validated on I/O examples and then verified by
     the bounded model checker — the suite's liftings are real *)
  List.iter
    (fun (b : Bench.t) ->
      match Bench.truth b with
      | None -> ()
      | Some truth -> (
          let func = Bench.func b in
          let prng = Prng.create ~seed:99 in
          match Stagg_validate.Examples.generate ~func ~signature:b.signature ~prng () with
          | Error msg -> Alcotest.fail (b.name ^ ": examples failed: " ^ msg)
          | Ok examples ->
              check_bool
                (b.name ^ ": ground truth reproduces the examples")
                true
                (Stagg_validate.Validator.check_concrete ~signature:b.signature ~examples truth);
              let r = Stagg_verify.Bmc.check ~func ~signature:b.signature ~candidate:truth () in
              check_bool
                (b.name ^ ": ground truth verifies (" ^ Stagg_verify.Bmc.result_to_string r ^ ")")
                true
                (r = Stagg_verify.Bmc.Equivalent)))
    Suite.all

let test_quality_distribution () =
  (* the calibration that reproduces the paper's LLM-only rate (~44%) *)
  let count q =
    List.length (List.filter (fun (b : Bench.t) -> b.llm_quality = q) Suite.all)
  in
  check_int "Exact benchmarks" 34 (count Stagg_oracle.Llm_client.Exact);
  (* exactly one Far benchmark: the five-index query below *)
  check_int "Far benchmarks" 1 (count Stagg_oracle.Llm_client.Far)

let test_unliftable_is_stated () =
  (* dk_conv1x1 requires a 5th index variable: its truth must use one *)
  let b = Option.get (Suite.find "dk_conv1x1") in
  let t = Option.get (Bench.truth b) in
  check_int "five distinct indices" 5
    (List.length (Stagg_taco.Ast.indices_of_program t))

let () =
  Alcotest.run "stagg_benchsuite"
    [
      ( "integrity",
        [
          Alcotest.test_case "self check" `Quick test_self_check;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "signatures" `Quick test_signatures_cover_params;
          Alcotest.test_case "quality calibration" `Quick test_quality_distribution;
          Alcotest.test_case "five-index benchmark" `Quick test_unliftable_is_stated;
        ] );
      ( "ground truths",
        [ Alcotest.test_case "validate and verify" `Slow test_ground_truths_hold ] );
    ]
