(* Tests for the three baselines: LLM-only, C2TACO (± heuristics) and
   Tenspiler. *)

module Suite = Stagg_benchsuite.Suite
module Bench = Stagg_benchsuite.Bench

let check_bool = Alcotest.(check bool)

let seed = 20250604
let bench name = Option.get (Suite.find name)

(* ---- LLM-only ---- *)

let test_llm_solves_exact () =
  List.iter
    (fun name ->
      let r = Stagg_baselines.Llm_only.run ~seed (bench name) in
      check_bool (name ^ " solved by the raw LLM") true r.Stagg.Result_.solved;
      check_bool "few attempts" true (r.attempts <= 12))
    [ "art_copy"; "art_gemv"; "mf_vec_dot" ]

let test_llm_fails_near () =
  (* near-miss benchmarks are what the raw LLM cannot do — and the reason
     STAGG exists *)
  List.iter
    (fun name ->
      check_bool (name ^ " unsolved by the raw LLM") false
        (Stagg_baselines.Llm_only.run ~seed (bench name)).Stagg.Result_.solved)
    [ "art_gemm"; "blas_sgemm"; "mf_vec_lerp"; "dk_conv1x1" ]

let test_llm_verifies_its_answers () =
  let r = Stagg_baselines.Llm_only.run ~seed (bench "art_gemv") in
  match r.solution with
  | Some sol ->
      let b = bench "art_gemv" in
      check_bool "LLM answer verified" true
        (Stagg_verify.Bmc.check ~func:(Bench.func b) ~signature:b.signature
           ~candidate:sol.concrete ()
        = Stagg_verify.Bmc.Equivalent)
  | None -> Alcotest.fail "expected a solution"

(* ---- C2TACO ---- *)

let c2 ?(heuristics = true) name = Stagg_baselines.C2taco.run ~seed ~heuristics (bench name)

let test_c2taco_solves_core () =
  List.iter
    (fun name -> check_bool (name ^ " solved by C2TACO") true (c2 name).Stagg.Result_.solved)
    [ "art_copy"; "art_dot"; "art_gemv"; "art_gemm"; "blas_syrk_lt"; "dsp_energy"; "sa_add_one" ]

let test_c2taco_structural_limits () =
  (* non-chain solutions are outside its bottom-up enumeration *)
  List.iter
    (fun name -> check_bool (name ^ " unsolved by C2TACO") false (c2 name).Stagg.Result_.solved)
    [ "dk_mse"; "blas_axpby"; "dk_conv1x1"; "mf_transform_pair" ]

let test_c2taco_scalability_limit () =
  (* mttkrp explodes the unguided enumeration (paper: exponential growth) *)
  let r = c2 "art_mttkrp" in
  check_bool "mttkrp exhausts the C2TACO budget" false r.Stagg.Result_.solved

let test_c2taco_noh_slower () =
  let w = c2 "art_gemv" in
  let wo = c2 ~heuristics:false "art_gemv" in
  check_bool "both solve" true (w.Stagg.Result_.solved && wo.Stagg.Result_.solved);
  check_bool "no heuristics needs more attempts" true (wo.attempts >= w.attempts)

let test_c2taco_constants () =
  let r = c2 "sa_fma_const" in
  check_bool "constant benchmark solved via literal pool" true r.Stagg.Result_.solved

(* ---- Tenspiler ---- *)

let ts name = Stagg_baselines.Tenspiler.run ~seed (bench name)

let test_tenspiler_library_parses () =
  List.iter
    (fun src ->
      match Stagg_taco.Parser.parse_program src with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (src ^ ": " ^ e))
    Stagg_baselines.Tenspiler.library;
  check_bool "non-trivial library" true (List.length Stagg_baselines.Tenspiler.library >= 30)

let test_tenspiler_solves_patterns () =
  List.iter
    (fun name -> check_bool (name ^ " in Tenspiler's space") true (ts name).Stagg.Result_.solved)
    [ "blas_sgemv"; "mf_vec_add"; "dk_normalize"; "ll_matmul"; "blas_sger" ]

let test_tenspiler_misses_constants () =
  (* literal-constant kernels are outside the fixed template library *)
  List.iter
    (fun name -> check_bool (name ^ " outside the library") false (ts name).Stagg.Result_.solved)
    [ "sa_add_one"; "dsp_mat_scale"; "dsp_mean8" ]

let test_tenspiler_attempt_count () =
  let r = ts "mf_vec_add" in
  check_bool "bounded by the library size" true
    (r.attempts <= List.length Stagg_baselines.Tenspiler.library)

let () =
  Alcotest.run "stagg_baselines"
    [
      ( "llm_only",
        [
          Alcotest.test_case "solves exact-quality queries" `Slow test_llm_solves_exact;
          Alcotest.test_case "fails near-miss queries" `Slow test_llm_fails_near;
          Alcotest.test_case "answers verified" `Quick test_llm_verifies_its_answers;
        ] );
      ( "c2taco",
        [
          Alcotest.test_case "solves core kernels" `Slow test_c2taco_solves_core;
          Alcotest.test_case "chain-only enumeration" `Slow test_c2taco_structural_limits;
          Alcotest.test_case "scalability limit" `Slow test_c2taco_scalability_limit;
          Alcotest.test_case "heuristics reduce attempts" `Quick test_c2taco_noh_slower;
          Alcotest.test_case "constants from source" `Quick test_c2taco_constants;
        ] );
      ( "tenspiler",
        [
          Alcotest.test_case "library parses" `Quick test_tenspiler_library_parses;
          Alcotest.test_case "solves library patterns" `Slow test_tenspiler_solves_patterns;
          Alcotest.test_case "misses constants" `Quick test_tenspiler_misses_constants;
          Alcotest.test_case "attempts bounded" `Quick test_tenspiler_attempt_count;
        ] );
    ]
