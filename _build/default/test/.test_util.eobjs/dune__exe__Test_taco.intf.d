test/test_taco.mli:
