test/test_verify.ml: Alcotest Bmc Poly QCheck QCheck_alcotest Rat Ratfunc Stagg_minic Stagg_taco Stagg_util Stagg_verify
