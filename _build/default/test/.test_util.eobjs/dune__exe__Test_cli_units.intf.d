test/test_cli_units.mli:
