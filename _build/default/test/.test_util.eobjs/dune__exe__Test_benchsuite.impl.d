test/test_benchsuite.ml: Alcotest List Option Prng Stagg_benchsuite Stagg_minic Stagg_oracle Stagg_taco Stagg_util Stagg_validate Stagg_verify String
