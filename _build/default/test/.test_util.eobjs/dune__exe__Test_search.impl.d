test/test_search.ml: Alcotest Astar Cfg Derive Gen_bottomup Gen_topdown Hashtbl List Node Option Pcfg Penalty Stagg_grammar Stagg_search Stagg_taco String
