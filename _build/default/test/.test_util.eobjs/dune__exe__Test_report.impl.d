test/test_report.ml: Alcotest List Stagg Stagg_benchsuite Stagg_oracle Stagg_report String
