test/test_template.ml: Alcotest Dimlist List Option Rat Stagg_taco Stagg_template Stagg_util String Subst Templatize
