test/test_minic.ml: Affine Alcotest Array Ast Dims Interp List Option Parser QCheck QCheck_alcotest Rat Recover Result Signature Sigspec Stagg_minic Stagg_util String Value
