test/test_util.ml: Alcotest Bigint List Pqueue Prng QCheck QCheck_alcotest Rat Stagg_util String
