test/test_baselines.ml: Alcotest List Option Stagg Stagg_baselines Stagg_benchsuite Stagg_taco Stagg_verify
