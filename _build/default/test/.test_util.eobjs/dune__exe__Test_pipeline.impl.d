test/test_pipeline.ml: Alcotest List Option Stagg Stagg_benchsuite Stagg_taco Stagg_validate Stagg_verify
