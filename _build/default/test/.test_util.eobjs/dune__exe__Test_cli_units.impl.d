test/test_cli_units.ml: Alcotest List Option Result Stagg Stagg_benchsuite Stagg_minic Stagg_oracle Stagg_taco
