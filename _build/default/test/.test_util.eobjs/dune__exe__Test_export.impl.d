test/test_export.ml: Alcotest Codegen_c Export Filename List Parser Result Stagg Stagg_benchsuite Stagg_minic Stagg_oracle Stagg_taco Stagg_verify String Sys
