test/test_validate.ml: Alcotest Array Examples List Option Prng Rat Result Stagg_minic Stagg_taco Stagg_template Stagg_util Stagg_validate Validator
