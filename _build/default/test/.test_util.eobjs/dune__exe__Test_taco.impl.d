test/test_taco.ml: Alcotest Array Ast Interp Ir List Lower Parser Pretty QCheck QCheck_alcotest Rat Result Shape Stagg_taco Stagg_util String Tensor Value
