test/test_grammar.ml: Alcotest Array Cfg Derive Float Gen_bottomup Gen_topdown List Pcfg Stagg_grammar Stagg_taco Taco_grammar
