test/test_oracle.ml: Alcotest List Llm_client Mock_llm Option Prng Prompt Response Stagg_oracle Stagg_taco Stagg_template Stagg_util String
