(* Tests for stagg_verify: symbolic polynomials, rational functions, and
   the bounded equivalence checker. *)

open Stagg_util
open Stagg_verify
module Sig = Stagg_minic.Signature

let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- Poly ---- *)

let x = Poly.var "x"
let y = Poly.var "y"

let test_poly_basic () =
  let p = Poly.add (Poly.mul x y) (Poly.const (Rat.of_int 2)) in
  check_string "print" "2 + x*y" (Poly.to_string p);
  check_bool "x*y = y*x" true (Poly.equal (Poly.mul x y) (Poly.mul y x));
  check_bool "p - p = 0" true (Poly.is_zero (Poly.sub p p));
  check_bool "is_const" true (Poly.is_const (Poly.sub p (Poly.mul x y)) = Some (Rat.of_int 2));
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Poly.vars p)

let test_poly_eval () =
  (* (x + y)^2 = x^2 + 2xy + y^2 at x=3, y=4 *)
  let s = Poly.add x y in
  let sq = Poly.mul s s in
  let v = Poly.eval sq (function "x" -> Rat.of_int 3 | _ -> Rat.of_int 4) in
  check_string "49" "49" (Rat.to_string v)

let arb_poly =
  let open QCheck.Gen in
  let rec gen n =
    if n = 0 then
      oneof [ map (fun k -> Poly.of_int k) (int_range (-4) 4); oneofl [ x; y; Poly.var "z" ] ]
    else
      oneof
        [ map2 Poly.add (gen (n - 1)) (gen (n - 1)); map2 Poly.mul (gen (n - 1)) (gen (n - 1)) ]
  in
  QCheck.make (gen 3) ~print:Poly.to_string

let qcheck_poly_semantics =
  (* canonical-form equality is semantic equality: evaluation respects all
     ring operations *)
  QCheck.Test.make ~name:"polynomial arithmetic commutes with evaluation" ~count:200
    (QCheck.pair arb_poly arb_poly) (fun (p, q) ->
      let env = function "x" -> Rat.of_int 2 | "y" -> Rat.of_int (-3) | _ -> Rat.of_ints 1 2 in
      Rat.equal (Poly.eval (Poly.add p q) env) (Rat.add (Poly.eval p env) (Poly.eval q env))
      && Rat.equal (Poly.eval (Poly.mul p q) env) (Rat.mul (Poly.eval p env) (Poly.eval q env)))

(* ---- Ratfunc ---- *)

let rx = Ratfunc.var "x"
let ry = Ratfunc.var "y"

let test_ratfunc_equality_cross_mul () =
  (* x/y = (x*x)/(x*y) as rational functions *)
  let a = Ratfunc.div rx ry in
  let b = Ratfunc.div (Ratfunc.mul rx rx) (Ratfunc.mul rx ry) in
  check_bool "cross-multiplied equality" true (Ratfunc.equal a b);
  check_bool "x/y <> y/x" false (Ratfunc.equal a (Ratfunc.div ry rx))

let test_ratfunc_value_interface () =
  check_bool "const detection" true (Ratfunc.is_const (Ratfunc.of_int 7) = Some (Rat.of_int 7));
  check_bool "to_int" true (Ratfunc.to_int (Ratfunc.of_int 7) = Some 7);
  check_bool "symbolic has no int" true (Ratfunc.to_int rx = None);
  check_bool "compare concrete" true
    (Ratfunc.compare_concrete (Ratfunc.of_int 3) (Ratfunc.of_int 5) = Some (-1));
  check_bool "compare symbolic" true (Ratfunc.compare_concrete rx ry = None);
  (* field identity through division *)
  let e = Ratfunc.sub (Ratfunc.div (Ratfunc.mul rx ry) ry) rx in
  check_bool "x*y/y - x = 0" true (Ratfunc.equal e Ratfunc.zero)

let test_ratfunc_div_by_zero_const () =
  check_bool "division by the zero constant raises" true
    (try
       ignore (Ratfunc.div rx Ratfunc.zero);
       false
     with Division_by_zero -> true)

(* ---- Bmc ---- *)

let parse_c = Stagg_minic.Parser.parse_function_exn
let parse_t = Stagg_taco.Parser.parse_program_exn

let saxpy_src =
  {|
void saxpy(int N, int a, int* X, int* Y, int* R) {
  int i;
  for (i = 0; i < N; i++) {
    R[i] = a * X[i] + Y[i];
  }
}
|}

let saxpy_sig =
  {
    Sig.args =
      [
        ("N", Sig.Size "N"); ("a", Sig.Scalar_data); ("X", Sig.Arr [ "N" ]);
        ("Y", Sig.Arr [ "N" ]); ("R", Sig.Arr [ "N" ]);
      ];
    out = "R";
  }

let bmc candidate =
  Bmc.check ~func:(parse_c saxpy_src) ~signature:saxpy_sig ~candidate:(parse_t candidate) ()

let test_bmc_equivalent () =
  check_bool "true lifting verifies" true (bmc "R(i) = a * X(i) + Y(i)" = Bmc.Equivalent);
  (* commuted and refactored forms also verify: it checks the function,
     not the syntax *)
  check_bool "commuted form verifies" true (bmc "R(i) = Y(i) + X(i) * a" = Bmc.Equivalent)

let test_bmc_inequivalent () =
  (match bmc "R(i) = a * X(i) - Y(i)" with
  | Bmc.Not_equivalent _ -> ()
  | r -> Alcotest.fail ("expected inequivalence, got " ^ Bmc.result_to_string r));
  match bmc "R(i) = a * X(i)" with
  | Bmc.Not_equivalent _ -> ()
  | r -> Alcotest.fail ("expected inequivalence, got " ^ Bmc.result_to_string r)

let test_bmc_beyond_io_testing () =
  (* a gemv whose candidate transposes the matrix: square random examples
     could in principle miss it, but the symbolic check cannot *)
  let src =
    {|
void gemv(int N, int M, int* A, int* X, int* R) {
  int i, j;
  for (i = 0; i < N; i++) {
    R[i] = 0;
    for (j = 0; j < M; j++) R[i] += A[i * M + j] * X[j];
  }
}
|}
  in
  let sg =
    {
      Sig.args =
        [
          ("N", Sig.Size "N"); ("M", Sig.Size "M"); ("A", Sig.Arr [ "N"; "M" ]);
          ("X", Sig.Arr [ "M" ]); ("R", Sig.Arr [ "N" ]);
        ];
      out = "R";
    }
  in
  let check c = Bmc.check ~func:(parse_c src) ~signature:sg ~candidate:(parse_t c) () in
  check_bool "correct verifies" true (check "R(i) = A(i,j) * X(j)" = Bmc.Equivalent);
  check_bool "division-refactoring verifies" true
    (* Σ (A/2) = (Σ A)/2 over rationals: semantically equal, syntactically far *)
    (Bmc.Equivalent
    = Bmc.check ~func:(parse_c src) ~signature:sg
        ~candidate:(parse_t "R(i) = A(i,j) * X(j) * 2 / 2")
        ())

let test_bmc_division_semantics () =
  (* the paper's rational semantics: C's / is interpreted exactly *)
  let src = "void h(int N, int* A, int* R) { int i; for (i=0;i<N;i++) R[i] = A[i] / 8; }" in
  let sg = { Sig.args = [ ("N", Sig.Size "N"); ("A", Sig.Arr [ "N" ]); ("R", Sig.Arr [ "N" ]) ]; out = "R" } in
  check_bool "rational division verifies" true
    (Bmc.Equivalent
    = Bmc.check ~func:(parse_c src) ~signature:sg ~candidate:(parse_t "R(i) = A(i) / 8") ())

let test_bmc_wrong_shape () =
  match bmc "R = a * X(i) + Y(i)" with
  | Bmc.Not_equivalent _ | Bmc.Inconclusive _ -> ()
  | Bmc.Equivalent -> Alcotest.fail "scalar output cannot equal a vector"

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "stagg_verify"
    [
      ( "poly",
        [
          Alcotest.test_case "basics" `Quick test_poly_basic;
          Alcotest.test_case "evaluation" `Quick test_poly_eval;
          qc qcheck_poly_semantics;
        ] );
      ( "ratfunc",
        [
          Alcotest.test_case "cross-multiplied equality" `Quick test_ratfunc_equality_cross_mul;
          Alcotest.test_case "Value.S interface" `Quick test_ratfunc_value_interface;
          Alcotest.test_case "zero divisor" `Quick test_ratfunc_div_by_zero_const;
        ] );
      ( "bmc",
        [
          Alcotest.test_case "equivalent programs" `Quick test_bmc_equivalent;
          Alcotest.test_case "inequivalent programs" `Quick test_bmc_inequivalent;
          Alcotest.test_case "stronger than I/O testing" `Quick test_bmc_beyond_io_testing;
          Alcotest.test_case "rational division" `Quick test_bmc_division_semantics;
          Alcotest.test_case "shape mismatch" `Quick test_bmc_wrong_shape;
        ] );
    ]
