(* Tests for stagg_grammar: CFG machinery, probability assignment with the
   h(α) fixpoint, the two grammar generators, and derivation counting. *)

open Stagg_grammar
module Ast = Stagg_taco.Ast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Stagg_taco.Parser.parse_program_exn

let close a b = Float.abs (a -. b) < 1e-9

(* a tiny hand-built grammar: S -> "a" = E; E -> T | E + E; T -> b | c *)
let tiny () =
  Cfg.make ~start:"S"
    ~categories:[ ("S", Cfg.Cat_program); ("E", Cfg.Cat_expr); ("T", Cfg.Cat_tensor) ]
    [
      ("S", [ Cfg.T (Cfg.Tok_tensor ("a", [])); Cfg.T Cfg.Tok_assign; Cfg.NT "E" ]);
      ("E", [ Cfg.NT "T" ]);
      ("E", [ Cfg.NT "E"; Cfg.T (Cfg.Tok_op Ast.Add); Cfg.NT "E" ]);
      ("T", [ Cfg.T (Cfg.Tok_tensor ("b", [])) ]);
      ("T", [ Cfg.T (Cfg.Tok_tensor ("c", [])) ]);
    ]

let test_cfg_basics () =
  let g = tiny () in
  check_int "five rules" 5 (Cfg.size g);
  check_int "two E rules" 2 (List.length (Cfg.rules_for g "E"));
  check_bool "category" true (Cfg.category g "E" = Cfg.Cat_expr);
  Alcotest.check_raises "missing category rejected"
    (Invalid_argument "Cfg.make: nonterminal X has no category") (fun () ->
      ignore
        (Cfg.make ~start:"X" ~categories:[] [ ("X", [ Cfg.NT "X" ]) ]))

let test_pcfg_normalization () =
  let g = tiny () in
  let w = Array.make (Cfg.size g) 0. in
  (* E -> T seen 3 times, E -> E+E once *)
  w.(0) <- 1.;
  w.(1) <- 3.;
  w.(2) <- 1.;
  w.(3) <- 2.;
  w.(4) <- 2.;
  let p = Pcfg.of_weights g w in
  check_bool "E->T prob" true (close (Pcfg.prob p (Cfg.rule g 1)) 0.75);
  check_bool "E->E+E prob" true (close (Pcfg.prob p (Cfg.rule g 2)) 0.25);
  check_bool "T rules uniform" true (close (Pcfg.prob p (Cfg.rule g 3)) 0.5);
  (* probabilities per nonterminal sum to 1 *)
  List.iter
    (fun nt ->
      let total = List.fold_left (fun acc r -> acc +. Pcfg.prob p r) 0. (Cfg.rules_for g nt) in
      check_bool (nt ^ " sums to 1") true (close total 1.))
    (Cfg.nonterminals g)

let test_pcfg_h_fixpoint () =
  let g = tiny () in
  let p = Pcfg.uniform g in
  (* h(T) = 1/2; h(E) = max(1/2 * h(T), 1/2 * h(E)^2) = 1/4 *)
  check_bool "h(T)" true (close (Pcfg.h p "T") 0.5);
  check_bool "h(E)" true (close (Pcfg.h p "E") 0.25);
  check_bool "h(S)" true (close (Pcfg.h p "S") 0.25);
  check_bool "h_cost finite" true (Pcfg.h_cost p "E" < infinity)

let test_pcfg_zero_prob_cost () =
  let g = tiny () in
  let w = Array.make (Cfg.size g) 1. in
  w.(2) <- 0. (* never expand E -> E+E *);
  let p = Pcfg.of_weights g w in
  check_bool "zero prob rule costs infinity" true (Pcfg.cost p (Cfg.rule g 2) = infinity);
  check_bool "positive rule costs finite" true (Pcfg.cost p (Cfg.rule g 1) < infinity)

let test_ops_available () =
  let g = tiny () in
  let p = Pcfg.uniform g in
  check_bool "+ available" true (Pcfg.ops_available p = [ Ast.Add ])

(* ---- generators ---- *)

let templates_of = List.map parse

let test_gen_topdown_shape () =
  (* paper Fig. 6: dimension list [1,2,1,0] with 3 unique indices *)
  let templates = templates_of [ "a(i) = b(i,j) * c(k) + d" ] in
  let g = Gen_topdown.generate ~dim_list:[ 1; 2; 1; 0 ] ~templates in
  let tensor_terms =
    List.concat_map
      (fun (r : Cfg.rule) ->
        List.filter_map
          (function Cfg.T (Cfg.Tok_tensor (n, idxs)) -> Some (n, idxs) | _ -> None)
          r.rhs)
      (Cfg.rules_for g "TENSOR")
  in
  (* b gets every 2-arrangement of {i,j,k} without repetition: 6 *)
  check_int "b arrangements" 6
    (List.length (List.filter (fun (n, _) -> n = "b") tensor_terms));
  (* c gets the 3 single indices *)
  check_int "c arrangements" 3
    (List.length (List.filter (fun (n, _) -> n = "c") tensor_terms));
  (* no repeated-index tuples: no candidate uses one *)
  check_bool "no b(i,i)" true
    (not (List.exists (fun (_, idxs) -> idxs = [ "i"; "i" ]) tensor_terms));
  (* d is 0-dimensional: bare scalar present *)
  check_bool "bare d" true (List.mem ("d", []) tensor_terms)

let test_gen_topdown_repeats_allowed_when_seen () =
  let templates = templates_of [ "a(i) = b(i,i)" ] in
  let g = Gen_topdown.generate ~dim_list:[ 1; 2 ] ~templates in
  let has_bii =
    List.exists
      (fun (r : Cfg.rule) -> r.rhs = [ Cfg.T (Cfg.Tok_tensor ("b", [ "i"; "i" ])) ])
      (Cfg.rules_for g "TENSOR")
  in
  check_bool "b(i,i) kept when a candidate uses it" true has_bii

let test_gen_topdown_const_gated () =
  (* Const enters the grammar only when some candidate has a constant *)
  let without = Gen_topdown.generate ~dim_list:[ 1; 1; 0 ] ~templates:(templates_of [ "a(i) = b(i) * c" ]) in
  let with_ = Gen_topdown.generate ~dim_list:[ 1; 1; 0 ] ~templates:(templates_of [ "a(i) = b(i) * 3" ]) in
  let has_const g =
    List.exists
      (fun (r : Cfg.rule) -> r.rhs = [ Cfg.T Cfg.Tok_const ])
      (Cfg.rules_for g "TENSOR")
  in
  check_bool "no const without literal candidates" false (has_const without);
  check_bool "const with literal candidates" true (has_const with_)

let test_gen_bottomup_shape () =
  (* paper Fig. 7: dimension list [0,1,2,1] *)
  let templates = templates_of [ "a = b(i) + c(i,j) * d(k)" ] in
  let g = Gen_bottomup.generate ~dim_list:[ 0; 1; 2; 1 ] ~templates in
  check_bool "TENSOR2 exists" true (Cfg.rules_for g "TENSOR2" <> []);
  check_bool "TENSOR4 exists" true (Cfg.rules_for g "TENSOR4" <> []);
  (* TAIL1 has ε and a continuation; the last TAIL has only ε *)
  check_int "TAIL1 rules" 2 (List.length (Cfg.rules_for g "TAIL1"));
  check_int "TAIL3 rules" 1 (List.length (Cfg.rules_for g "TAIL3"));
  check_bool "TAIL3 is epsilon" true ((List.hd (Cfg.rules_for g "TAIL3")).rhs = [])

let test_gen_bottomup_too_short () =
  Alcotest.check_raises "needs >= 2 entries"
    (Invalid_argument "Gen_bottomup.generate: dimension list needs at least two entries") (fun () ->
      ignore (Gen_bottomup.generate ~dim_list:[ 1 ] ~templates:[]))

let test_taco_grammar_full () =
  let g = Taco_grammar.generate ~n_rhs_tensors:2 ~max_rank:2 ~n_indices:2 () in
  check_bool "has paren rule flagged concrete" true
    (Array.exists (fun (r : Cfg.rule) -> r.concrete_syntax) (Cfg.rules g));
  check_bool "sizeable" true (Cfg.size g > 20)

(* ---- derivation counting ---- *)

let test_derive_counts () =
  let templates = templates_of [ "a(i) = b(i,j) * c(j)"; "a(i) = b(i,j) * c(j)"; "a(i) = b(j,i) * c(i)" ] in
  let g = Gen_topdown.generate ~dim_list:[ 1; 2; 1 ] ~templates in
  let w = Derive.weights_of_templates g templates in
  let weight_of_term term =
    let total = ref 0. in
    Array.iter
      (fun (r : Cfg.rule) -> if r.rhs = [ Cfg.T term ] then total := !total +. w.(r.id))
      (Cfg.rules g);
    !total
  in
  check_bool "b(i,j) counted twice" true (weight_of_term (Cfg.Tok_tensor ("b", [ "i"; "j" ])) = 2.);
  check_bool "b(j,i) counted once" true (weight_of_term (Cfg.Tok_tensor ("b", [ "j"; "i" ])) = 1.);
  check_bool "* counted thrice" true (weight_of_term (Cfg.Tok_op Ast.Mul) = 3.);
  (* operators never used keep weight 0 (paper Fig. 3) *)
  check_bool "+ weight zero" true (weight_of_term (Cfg.Tok_op Ast.Add) = 0.);
  (* unused tensor rules get the default weight 1 *)
  check_bool "unused c(j)... default 1" true (weight_of_term (Cfg.Tok_tensor ("c", [ "j" ])) >= 1.)

let test_derive_relaxed_const_shift () =
  (* a(i) = Const - b(i): the 1-dim tensor sits at position 3 (named c in
     the grammar) but templatization called it b; relaxed matching still
     derives it *)
  let templates = templates_of [ "a(i) = 5 - b(i)" ] in
  let g = Gen_topdown.generate ~dim_list:[ 1; 0; 1 ] ~templates in
  check_bool "derivable via relaxation" true (Derive.count_rules g (List.hd templates) <> None)

let test_derive_bottom_up_chain_only () =
  let templates = templates_of [ "a = b(i) * c(i)" ] in
  let g = Gen_bottomup.generate ~dim_list:[ 0; 1; 1 ] ~templates in
  check_bool "chain derivable" true (Derive.count_rules g (parse "a = b(i) * c(i)") <> None);
  (* a balanced/right-nested expression is not in a right-linear grammar *)
  check_bool "non-chain not derivable" true
    (Derive.count_rules g (parse "a = b(i) * (b(i) - c(i))") = None)

let () =
  Alcotest.run "stagg_grammar"
    [
      ( "cfg+pcfg",
        [
          Alcotest.test_case "cfg basics" `Quick test_cfg_basics;
          Alcotest.test_case "weight normalization" `Quick test_pcfg_normalization;
          Alcotest.test_case "h fixpoint" `Quick test_pcfg_h_fixpoint;
          Alcotest.test_case "zero probability = infinite cost" `Quick test_pcfg_zero_prob_cost;
          Alcotest.test_case "ops_available" `Quick test_ops_available;
        ] );
      ( "generators",
        [
          Alcotest.test_case "top-down shape (Fig 6)" `Quick test_gen_topdown_shape;
          Alcotest.test_case "repeated indices gated" `Quick test_gen_topdown_repeats_allowed_when_seen;
          Alcotest.test_case "Const gated on candidates" `Quick test_gen_topdown_const_gated;
          Alcotest.test_case "bottom-up shape (Fig 7)" `Quick test_gen_bottomup_shape;
          Alcotest.test_case "bottom-up dimension list too short" `Quick test_gen_bottomup_too_short;
          Alcotest.test_case "full TACO grammar" `Quick test_taco_grammar_full;
        ] );
      ( "derive",
        [
          Alcotest.test_case "leftmost derivation counts" `Quick test_derive_counts;
          Alcotest.test_case "relaxed matching across Const shift" `Quick test_derive_relaxed_const_shift;
          Alcotest.test_case "right-linear grammars take chains only" `Quick test_derive_bottom_up_chain_only;
        ] );
    ]
