(* Tests for stagg_oracle: the mock LLM's candidate distribution and the
   response parser. *)

open Stagg_util
open Stagg_oracle
module Ast = Stagg_taco.Ast

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let parse = Stagg_taco.Parser.parse_program_exn

(* ---- response parsing ---- *)

let test_response_formats () =
  let ok s expected =
    match Response.parse_line s with
    | Some p -> check_string s expected (Stagg_taco.Pretty.program_to_string p)
    | None -> Alcotest.fail ("failed to parse: " ^ s)
  in
  ok "a(i) = b(i,j) * c(j)" "a(i) = b(i, j) * c(j)";
  ok "1. r(f) = m1(i, f) * m2(f)" "r(f) = m1(i, f) * m2(f)";
  ok "3) Result(i) := Mat1(f,i) * Mat2(i)" "Result(i) = Mat1(f, i) * Mat2(i)";
  ok "- a = b(i) + 2" "a = b(i) + 2";
  ok "`x(i) = y(i)`" "x(i) = y(i)";
  ok "Result(f) = sum(f, mat1(f, i) * mat2(i))" "Result(f) = mat1(f, i) * mat2(i)"

let test_response_garbage_dropped () =
  check_bool "prose dropped" true (Response.parse_line "I cannot translate this code." = None);
  check_bool "trailing op dropped" true (Response.parse_line "a(i) = b(i) +" = None);
  check_bool "empty dropped" true (Response.parse_line "   " = None)

let test_response_parse_all () =
  let lines =
    [ "1. a(i) = b(i)"; "garbage here!"; "2. a(i) = b(i) * 2"; ""; "3. a = b +" ]
  in
  check_int "two valid candidates" 2 (List.length (Response.parse_all lines))

(* ---- prompt ---- *)

let contains_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_prompt () =
  let p = Prompt.build ~c_source:"void f() {}" in
  check_bool "asks for 10" true (contains_sub "10" p);
  check_bool "contains the C source" true (contains_sub "void f() {}" p)

(* ---- mock LLM ---- *)

let truth = parse "Result(i) = Mat1(i,j) * Mat2(j)"

let query quality seed =
  let prng = Prng.create ~seed in
  Mock_llm.query ~prng ~ground_truth:truth ~quality ()

let test_mock_determinism () =
  Alcotest.(check (list string)) "same seed, same responses" (query Llm_client.Near 1)
    (query Llm_client.Near 1);
  check_bool "different seeds differ" true (query Llm_client.Near 1 <> query Llm_client.Near 2)

let test_mock_count () =
  List.iter
    (fun q ->
      let n = List.length (query q 7) in
      check_bool "10 to 12 responses" true (n >= 10 && n <= 12))
    [ Llm_client.Exact; Llm_client.Near; Llm_client.Far ]

let templatized quality seed =
  query quality seed |> Response.parse_all
  |> List.filter_map Stagg_template.Templatize.templatize

let truth_template =
  Option.get (Stagg_template.Templatize.templatize truth)

let test_mock_exact_contains_solution () =
  (* over a few seeds, Exact queries nearly always contain the solution
     template *)
  let hits =
    List.length
      (List.filter
         (fun seed ->
           List.exists (Ast.equal_program truth_template) (templatized Llm_client.Exact seed))
         [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
  in
  check_bool "exact quality solves" true (hits >= 8)

let test_mock_near_misses () =
  (* Near candidates are never the solution template — that is what makes
     them near MISSES — but they parse and templatize *)
  List.iter
    (fun seed ->
      let ts = templatized Llm_client.Near seed in
      check_bool "has candidates" true (List.length ts > 0);
      check_bool "none is the solution" true
        (not (List.exists (Ast.equal_program truth_template) ts)))
    [ 1; 2; 3; 4; 5 ]

let test_mock_near_neighborhood () =
  (* the solution's dimension list usually survives the noise: that is the
     neighborhood hypothesis STAGG relies on (§4) *)
  let good =
    List.length
      (List.filter
         (fun seed ->
           match Stagg_template.Dimlist.predict (templatized Llm_client.Near seed) with
           | Some l -> l = [ 1; 2; 1 ]
           | None -> false)
         [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ])
  in
  check_bool "dimension list mostly preserved" true (good >= 7)

let test_mock_far_disrupts () =
  (* Far responses should disrupt the dimension list at least sometimes *)
  let bad =
    List.length
      (List.filter
         (fun seed ->
           match Stagg_template.Dimlist.predict (templatized Llm_client.Far seed) with
           | Some l -> l <> [ 1; 2; 1 ]
           | None -> true)
         (List.init 10 (fun i -> i + 1)))
  in
  check_bool "far quality disrupts predictions" true (bad >= 3)

let test_mock_notation_variety () =
  (* over many seeds the mock exercises := and sum(...) notations *)
  let all = List.concat_map (fun s -> query Llm_client.Near s) (List.init 30 (fun i -> i)) in
  check_bool "some := responses" true (List.exists (contains_sub ":=") all);
  check_bool "some sum(...) responses" true (List.exists (contains_sub "sum(") all)

let () =
  Alcotest.run "stagg_oracle"
    [
      ( "response",
        [
          Alcotest.test_case "notational formats" `Quick test_response_formats;
          Alcotest.test_case "garbage dropped" `Quick test_response_garbage_dropped;
          Alcotest.test_case "parse_all" `Quick test_response_parse_all;
        ] );
      ("prompt", [ Alcotest.test_case "prompt text" `Quick test_prompt ]);
      ( "mock_llm",
        [
          Alcotest.test_case "determinism" `Quick test_mock_determinism;
          Alcotest.test_case "response count" `Quick test_mock_count;
          Alcotest.test_case "Exact contains the solution" `Quick test_mock_exact_contains_solution;
          Alcotest.test_case "Near candidates always miss" `Quick test_mock_near_misses;
          Alcotest.test_case "Near preserves the neighborhood" `Quick test_mock_near_neighborhood;
          Alcotest.test_case "Far disrupts predictions" `Quick test_mock_far_disrupts;
          Alcotest.test_case "notational variety" `Quick test_mock_notation_variety;
        ] );
    ]
