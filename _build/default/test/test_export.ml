(* Tests for the backend exporters (Codegen_c, Export) and the replay LLM
   client — including the round-trip property: a TACO program compiled to
   C by our backend must be lifted back to an equivalent TACO program. *)

open Stagg_taco
module Sig = Stagg_minic.Signature

let check_bool = Alcotest.(check bool)

let contains_sub sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let parse = Parser.parse_program_exn

(* ---- Codegen_c ---- *)

let gemv_params =
  [
    { Codegen_c.tname = "A"; dims = [ "N"; "M" ] };
    { Codegen_c.tname = "X"; dims = [ "M" ] };
  ]

let gemv_out = { Codegen_c.tname = "R"; dims = [ "N" ] }

let test_codegen_gemv () =
  match
    Codegen_c.emit_program ~name:"gemv" ~params:gemv_params ~out:gemv_out
      (parse "R(i) = A(i,j) * X(j)")
  with
  | Error e -> Alcotest.fail e
  | Ok src ->
      check_bool "signature" true (contains_sub "void gemv(int M, int N, int* A, int* X, int* R)" src);
      check_bool "linearized load" true (contains_sub "A[i * M + j]" src);
      (* and the emitted C parses in our own mini-C frontend *)
      check_bool "emitted C parses" true (Result.is_ok (Stagg_minic.Parser.parse_function src))

let test_codegen_rejects_unknown_tensor () =
  check_bool "unknown tensor" true
    (Result.is_error
       (Codegen_c.emit_program ~name:"f" ~params:[] ~out:gemv_out (parse "R(i) = Z(i)")))

(* The round-trip property: TACO → (our C backend) → STAGG → equivalent
   TACO. This exercises lowering, code generation, the C frontend, the
   whole synthesis pipeline and the verifier in one loop. *)
let roundtrip taco_src ~params ~out ~sig_args ~quality =
  match Codegen_c.emit_program ~name:"kernel" ~params ~out (parse taco_src) with
  | Error e -> Alcotest.fail ("codegen: " ^ e)
  | Ok c_src -> (
      let bench =
        Stagg_benchsuite.Bench.mk ~name:("roundtrip_" ^ taco_src)
          ~category:Stagg_benchsuite.Bench.Artificial ~quality ~args:sig_args
          ~out:out.Codegen_c.tname ~truth:taco_src c_src
      in
      let r = Stagg.Pipeline.run Stagg.Method_.stagg_td bench in
      match r.solution with
      | Some sol ->
          check_bool (taco_src ^ ": lifted program verifies") true
            (Stagg_verify.Bmc.check
               ~func:(Stagg_benchsuite.Bench.func bench)
               ~signature:bench.signature ~candidate:sol.concrete ()
            = Stagg_verify.Bmc.Equivalent)
      | None -> Alcotest.fail (taco_src ^ ": not lifted back"))

let test_roundtrip_gemv () =
  roundtrip "R(i) = A(i,j) * X(j)" ~params:gemv_params ~out:gemv_out
    ~sig_args:
      [
        Stagg_benchsuite.Bench.size "M";
        Stagg_benchsuite.Bench.size "N";
        Stagg_benchsuite.Bench.arr "A" [ "N"; "M" ];
        Stagg_benchsuite.Bench.arr "X" [ "M" ];
        Stagg_benchsuite.Bench.arr "R" [ "N" ];
      ]
    ~quality:Stagg_oracle.Llm_client.Near

let test_roundtrip_saxpy_like () =
  roundtrip "R(i) = A(i) * B(i) + C(i)"
    ~params:
      [
        { Codegen_c.tname = "A"; dims = [ "N" ] };
        { Codegen_c.tname = "B"; dims = [ "N" ] };
        { Codegen_c.tname = "C"; dims = [ "N" ] };
      ]
    ~out:{ Codegen_c.tname = "R"; dims = [ "N" ] }
    ~sig_args:
      [
        Stagg_benchsuite.Bench.size "N";
        Stagg_benchsuite.Bench.arr "A" [ "N" ];
        Stagg_benchsuite.Bench.arr "B" [ "N" ];
        Stagg_benchsuite.Bench.arr "C" [ "N" ];
        Stagg_benchsuite.Bench.arr "R" [ "N" ];
      ]
    ~quality:Stagg_oracle.Llm_client.Near

(* ---- Export ---- *)

let test_export_numpy_einsum () =
  match Export.to_numpy (parse "R(i) = A(i,j) * X(j)") with
  | Error e -> Alcotest.fail e
  | Ok py ->
      check_bool "einsum emitted" true (contains_sub "np.einsum(\"ij,j->i\", A, X)" py);
      check_bool "def line" true (contains_sub "def lifted(A, X):" py)

let test_export_numpy_elementwise () =
  match Export.to_numpy (parse "R(i) = A(i) + B(i) * s") with
  | Error e -> Alcotest.fail e
  | Ok py -> check_bool "broadcast arithmetic" true (contains_sub "(A) " py || contains_sub "A" py)

let test_export_pytorch () =
  match Export.to_pytorch ~name:"dot" (parse "R = A(i) * B(i)") with
  | Error e -> Alcotest.fail e
  | Ok py -> check_bool "torch backend" true (contains_sub "torch.einsum" py)

let test_export_taco_cpp () =
  match Export.to_taco_cpp ~name:"gemv" (parse "R(i) = A(i,j) * X(j)") with
  | Error e -> Alcotest.fail e
  | Ok cpp ->
      check_bool "IndexVar decl" true (contains_sub "IndexVar i, j;" cpp);
      check_bool "assignment" true (contains_sub "R(i) = (A(i, j) * X(j));" cpp);
      check_bool "compile calls" true (contains_sub "R.compile();" cpp)

(* ---- Replay client ---- *)

let test_replay_lines () =
  let (module C) =
    Stagg_oracle.Replay.of_lines
      [ "# a comment"; ""; "a(i) = b(i)"; "   "; "a(i) = b(i) * 2" ]
  in
  Alcotest.(check (list string)) "comments and blanks dropped"
    [ "a(i) = b(i)"; "a(i) = b(i) * 2" ]
    (C.query ~prompt:"whatever")

let test_replay_file () =
  let path = Filename.temp_file "stagg_replay" ".txt" in
  let oc = open_out path in
  output_string oc "R(i) = Mat1(i,j) * Mat2(j)\n# noise\nR(i) := Mat1(j,i) * Mat2(j)\n";
  close_out oc;
  let (module C) = Stagg_oracle.Replay.of_file path in
  Sys.remove path;
  Alcotest.(check int) "two candidates" 2 (List.length (C.query ~prompt:""))

let () =
  Alcotest.run "stagg_export"
    [
      ( "codegen_c",
        [
          Alcotest.test_case "gemv" `Quick test_codegen_gemv;
          Alcotest.test_case "unknown tensor" `Quick test_codegen_rejects_unknown_tensor;
          Alcotest.test_case "round trip: gemv" `Slow test_roundtrip_gemv;
          Alcotest.test_case "round trip: fma" `Slow test_roundtrip_saxpy_like;
        ] );
      ( "export",
        [
          Alcotest.test_case "numpy einsum" `Quick test_export_numpy_einsum;
          Alcotest.test_case "numpy elementwise" `Quick test_export_numpy_elementwise;
          Alcotest.test_case "pytorch" `Quick test_export_pytorch;
          Alcotest.test_case "taco c++" `Quick test_export_taco_cpp;
        ] );
      ( "replay",
        [
          Alcotest.test_case "lines" `Quick test_replay_lines;
          Alcotest.test_case "file" `Quick test_replay_file;
        ] );
    ]
